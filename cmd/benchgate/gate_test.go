package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseText = `
goos: linux
BenchmarkSimulate-8         	      50	  26000000 ns/op	 3400000 B/op	   56000 allocs/op
BenchmarkSimulate-8         	      50	  26400000 ns/op	 3400100 B/op	   56010 allocs/op
BenchmarkSimCFPCycle-8      	     200	    380000 ns/op	  327000 B/op	    7854 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	res := parseBench(baseText)
	if len(res) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(res))
	}
	s := res["BenchmarkSimulate"]
	if s == nil || len(s.nsOp) != 2 || len(s.allocs) != 2 {
		t.Fatalf("BenchmarkSimulate samples not collected: %+v", s)
	}
	if s.nsOp[0] != 26000000 || s.allocs[1] != 56010 {
		t.Fatalf("wrong samples: %+v", s)
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	head := strings.ReplaceAll(baseText, "380000 ns/op", "400000 ns/op") // +5%
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("5%% regression should pass a 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report missing PASS:\n%s", report)
	}
}

func TestCompareNsOpRegressionFails(t *testing.T) {
	head := strings.ReplaceAll(baseText, "26000000 ns/op", "39000000 ns/op")
	head = strings.ReplaceAll(head, "26400000 ns/op", "39600000 ns/op") // +50%
	head = strings.ReplaceAll(head, "380000 ns/op", "570000 ns/op")     // +50%
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if ok {
		t.Fatalf("50%% regression passed a 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "geomean") {
		t.Fatalf("report missing geomean line:\n%s", report)
	}
}

func TestCompareAllocIncreaseFails(t *testing.T) {
	head := strings.ReplaceAll(baseText, "7854 allocs/op", "7855 allocs/op")
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if ok {
		t.Fatalf("alloc increase passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op increased") {
		t.Fatalf("report missing alloc failure:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	head := strings.ReplaceAll(baseText, "7854 allocs/op", "394 allocs/op")
	head = strings.ReplaceAll(head, "380000 ns/op", "180000 ns/op")
	report, ok := compare(parseBench(baseText), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("improvement failed the gate:\n%s", report)
	}
}

func TestCompareNoCommonBenchmarksFails(t *testing.T) {
	other := "BenchmarkOther-8 10 5 ns/op\n"
	if _, ok := compare(parseBench(baseText), parseBench(other), 0.15); ok {
		t.Fatal("disjoint benchmark sets should fail the gate")
	}
}

func names(res map[string]*benchSeries) []string {
	var out []string
	for name := range res {
		out = append(out, name)
	}
	return out
}

// Runs from machines with different GOMAXPROCS must merge into one
// series, including for sub-benchmarks whose names carry their own
// dashes; only a trailing numeric segment is a CPU suffix.
func TestParseBenchNameNormalization(t *testing.T) {
	text := `
BenchmarkSimTrialSweep/load=0.5-16    100  12345 ns/op
BenchmarkSimTrialSweep/load=0.5-8     100  12400 ns/op
BenchmarkOdd-name-2                    10    100 ns/op
BenchmarkPlain                         10    200 ns/op
`
	res := parseBench(text)
	s := res["BenchmarkSimTrialSweep/load=0.5"]
	if s == nil || len(s.nsOp) != 2 {
		t.Fatalf("CPU suffixes -16/-8 not merged: %v", names(res))
	}
	if res["BenchmarkOdd-name"] == nil {
		t.Fatalf("trailing numeric segment should strip as a CPU count: %v", names(res))
	}
	if res["BenchmarkPlain"] == nil {
		t.Fatalf("suffix-free name mangled: %v", names(res))
	}
}

func TestParseBenchIgnoresMalformedLines(t *testing.T) {
	text := `
goos: linux
pkg: iaclan
BenchmarkShort-8 100
BenchmarkNoNums-8 abc def ns/op
BenchmarkAllocOnly-8 100 7 allocs/op
BenchmarkGood-8 100 500 ns/op 4096 B/op 3 allocs/op
PASS
ok  	iaclan	1.2s
`
	res := parseBench(text)
	if len(res) != 1 {
		t.Fatalf("only BenchmarkGood should survive, got %v", names(res))
	}
	s := res["BenchmarkGood"]
	if s == nil || len(s.nsOp) != 1 || s.nsOp[0] != 500 {
		t.Fatalf("ns/op sample lost: %+v", s)
	}
	// B/op is deliberately not gated; only allocs/op is recorded.
	if !s.hasAll || len(s.allocs) != 1 || s.allocs[0] != 3 {
		t.Fatalf("allocs/op sample lost: %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd-length median = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even-length median = %v, want 2.5", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Fatal("empty median should be NaN")
	}
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 || xs[1] != 1 {
		t.Fatalf("median reordered its input: %v", xs)
	}
}

// A -benchmem mismatch between the two runs must not trip the alloc
// gate: it only applies when both sides carry allocs/op samples.
func TestCompareAllocGateNeedsBothSides(t *testing.T) {
	base := "BenchmarkX-8 100 1000 ns/op 5 allocs/op\n"
	head := "BenchmarkX-8 100 1000 ns/op\n"
	report, ok := compare(parseBench(base), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("head without allocs/op should skip the alloc gate:\n%s", report)
	}
}

// Benchmarks present on only one side (deleted, or new in the PR) are
// excluded from both the ratio table and the geomean.
func TestCompareSkipsOneSidedBenchmarks(t *testing.T) {
	base := "BenchmarkOld-8 100 1000 ns/op\nBenchmarkBoth-8 100 1000 ns/op\n"
	head := "BenchmarkBoth-8 100 1000 ns/op\nBenchmarkNew-8 100 99999999 ns/op\n"
	report, ok := compare(parseBench(base), parseBench(head), 0.15)
	if !ok {
		t.Fatalf("one-sided benchmarks must not gate:\n%s", report)
	}
	if strings.Contains(report, "BenchmarkOld") || strings.Contains(report, "BenchmarkNew") {
		t.Fatalf("one-sided benchmarks leaked into the report:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkBoth") {
		t.Fatalf("common benchmark missing from the report:\n%s", report)
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte("BenchmarkX-8 100 1000 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := parseFile(good)
	if err != nil || res["BenchmarkX"] == nil {
		t.Fatalf("parseFile(good) = %v, %v", names(res), err)
	}
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("goos: linux\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFile(empty); err == nil {
		t.Fatal("a file with no benchmark lines should error, not gate vacuously")
	}
	if _, err := parseFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file should error")
	}
}
