// Command benchgate compares two sets of Go benchmark results (the text
// format `go test -bench` prints, typically with -count=N) and enforces
// the repository's benchmark-regression gate:
//
//   - the geometric mean of per-benchmark ns/op ratios (head over base)
//     must not exceed 1 + max-regress (default 0.15, i.e. 15%), and
//   - no benchmark may increase its allocs/op at all.
//
// Only benchmarks present in both files are compared; per-benchmark
// medians tame run-to-run noise. Exit status 1 means the gate failed.
//
// Usage:
//
//	benchgate -base main.txt -head pr.txt [-max-regress 0.15]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	base := flag.String("base", "", "benchmark results of the base commit (required)")
	head := flag.String("head", "", "benchmark results of the head commit (required)")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated geomean ns/op regression (0.15 = 15%)")
	flag.Parse()
	if *base == "" || *head == "" {
		flag.Usage()
		os.Exit(2)
	}
	baseRes, err := parseFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headRes, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	report, ok := compare(baseRes, headRes, *maxRegress)
	fmt.Print(report)
	if !ok {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*benchSeries, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := parseBench(string(data))
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}
