// Command iacbench regenerates every table and figure of the paper's
// evaluation (Section 10) plus the analytic results of Section 5, and
// prints each next to the paper's claim. See DESIGN.md for the
// experiment index.
//
// Usage:
//
//	iacbench                 # run everything at paper-sized settings
//	iacbench -exp fig12      # one experiment
//	iacbench -trials 10 -slots 200 -runs 1   # quicker, coarser
//	iacbench -cdf            # also render ASCII CDFs for fig15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iaclan"
	"iaclan/internal/stats"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiment id (see DESIGN.md) or 'all'")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 40, "scenario draws for scatter experiments")
		slots   = flag.Int("slots", 1000, "slots for the large-network MAC runs")
		runs    = flag.Int("runs", 3, "repetitions of the MAC experiment")
		cdf     = flag.Bool("cdf", false, "render ASCII CDFs for series results")
	)
	flag.Parse()

	cfg := iaclan.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.Trials = *trials
	cfg.Slots = *slots
	cfg.Runs = *runs

	ids := iaclan.Experiments()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	failed := 0
	for _, id := range ids {
		r, err := iaclan.RunExperiment(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(r)
		if *cdf {
			for name, series := range r.Series {
				if len(series) >= 5 {
					fmt.Print(stats.ASCIICDF(series, 56, 10, "   CDF "+name))
				}
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
