// Command iacvet is the multichecker binary for iaclan's
// project-specific static-analysis suite (internal/analysis): the
// maprange, detpure, wsalloc, and tracenil analyzers plus the
// iacvet:allow pragma validator. See DESIGN.md "Static analysis".
//
// The canonical invocation is through the vet driver, which handles
// package loading, caching, and dependency facts:
//
//	go build -o iacvet ./cmd/iacvet
//	go vet -vettool=$PWD/iacvet ./...
//
// As a convenience, invoking it directly with package patterns re-execs
// go vet with itself as the vettool:
//
//	iacvet ./...
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"iaclan/internal/analysis"
)

func main() {
	if args := os.Args[1:]; len(args) > 0 && !vetProtocol(args) {
		os.Exit(selfVet(args))
	}
	unitchecker.Main(analysis.Analyzers()...)
}

// vetProtocol reports whether the arguments look like the vet driver's
// tool protocol (flag queries like -V=full, or *.cfg unit files) rather
// than human-typed package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-") || strings.HasPrefix(a, "@") {
			return true
		}
	}
	return false
}

// selfVet runs `go vet -vettool=<this binary> <patterns>` so the suite
// can be invoked directly during development.
func selfVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iacvet: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "iacvet: %v\n", err)
		return 2
	}
	return 0
}
