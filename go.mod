module iaclan

go 1.24

// Vendored from the Go 1.24 distribution's cmd/vendor tree (the copy
// go vet itself builds against); the build is fully offline via
// vendor/. See DESIGN.md "Static analysis".
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
