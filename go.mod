module iaclan

go 1.24
