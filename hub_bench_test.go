package iaclan

import (
	"time"

	"iaclan/internal/backend"
)

// benchHubIface adapts the two backend transports to one shape for the
// hub benchmarks in bench_test.go.
type benchHubIface struct {
	pub   func(payload []byte, seq uint32) error
	drain func(min int)
	close func()
}

func (h *benchHubIface) PublishPacket(payload []byte, seq uint32) error {
	return h.pub(payload, seq)
}

func (h *benchHubIface) DrainAll(min int) { h.drain(min) }

func (h *benchHubIface) Close() {
	if h.close != nil {
		h.close()
	}
}

func newMemHubForBench() *benchHubIface {
	h := backend.NewMemHub(3)
	return &benchHubIface{
		pub: func(payload []byte, seq uint32) error {
			return h.Publish(0, backend.Message{Type: backend.MsgDecodedPacket, Seq: seq, Payload: payload})
		},
		drain: func(min int) {
			h.Drain(1)
			h.Drain(2)
		},
	}
}

func newTCPHubForBench() (*benchHubIface, error) {
	h, err := backend.NewTCPHub(3)
	if err != nil {
		return nil, err
	}
	for p := 0; p < 3; p++ {
		if err := h.ConnectPort(p); err != nil {
			h.Close()
			return nil, err
		}
	}
	return &benchHubIface{
		pub: func(payload []byte, seq uint32) error {
			return h.Publish(0, backend.Message{Type: backend.MsgDecodedPacket, Seq: seq, Payload: payload})
		},
		drain: func(min int) {
			h.DrainWait(1, min, 5*time.Second)
			h.DrainWait(2, min, 5*time.Second)
		},
		close: func() { h.Close() },
	}, nil
}
