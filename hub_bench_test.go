package iaclan

import (
	"math/rand"
	"testing"
	"time"

	"iaclan/internal/backend"
	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/phy"
	"iaclan/internal/radio"
)

// benchHubIface adapts the two backend transports to one shape for the
// hub benchmarks in bench_test.go.
type benchHubIface struct {
	pub   func(payload []byte, seq uint32) error
	drain func(min int)
	close func()
}

func (h *benchHubIface) PublishPacket(payload []byte, seq uint32) error {
	return h.pub(payload, seq)
}

func (h *benchHubIface) DrainAll(min int) { h.drain(min) }

func (h *benchHubIface) Close() {
	if h.close != nil {
		h.close()
	}
}

func newMemHubForBench() *benchHubIface {
	h := backend.NewMemHub(3)
	return &benchHubIface{
		pub: func(payload []byte, seq uint32) error {
			return h.Publish(0, backend.Message{Type: backend.MsgDecodedPacket, Seq: seq, Payload: payload})
		},
		drain: func(min int) {
			h.Drain(1)
			h.Drain(2)
		},
	}
}

// Cancellation is the per-packet cost an AP pays for every packet the
// hub ships to it (reconstruct-and-subtract, Section 7.1d). The pair
// below contrasts the heap path with the reusable-workspace path so the
// CI benchmark gate can watch both.

func benchCancelSetup(b *testing.B) (rx [][]complex128, payload []byte, v cmplxmat.Vector, est phy.LinkEstimate, dur int) {
	b.Helper()
	w := channel.NewWorld(channel.DefaultParams(), 8)
	tx := w.AddNode(0, 0)
	rcv := w.AddNode(4, 0)
	m := radio.NewMedium(w, 1e6, 0.001, 9)
	est = phy.EstimateLink(m, tx, rcv, 4)
	rng := rand.New(rand.NewSource(10))
	payload = make([]byte, 1500)
	rng.Read(payload)
	v = cmplxmat.RandomGaussianVector(rng, 2).Normalize()
	burst := radio.Burst{From: tx, Start: 0, Samples: phy.PrecodeFrame(payload, v, 1)}
	dur = burst.Len()
	rx = m.Receive(rcv, dur, []radio.Burst{burst})
	return rx, payload, v, est, dur
}

// BenchmarkHubPacketCancelHeap is the "before" shape: every shared
// packet reconstructs and cancels into freshly allocated antenna buffers.
func BenchmarkHubPacketCancelHeap(b *testing.B) {
	rx, payload, v, est, dur := benchCancelSetup(b)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recon := phy.ReconstructAtReceiver(payload, v, 1, est.H, est.CFO, 1e6, 0, dur)
		phy.Cancel(rx, recon)
	}
}

// BenchmarkHubPacketCancelWorkspace is the "after" shape: the same
// reconstruct-and-subtract on one reusable workspace — zero steady-state
// heap allocations per shared packet.
func BenchmarkHubPacketCancelWorkspace(b *testing.B) {
	rx, payload, v, est, dur := benchCancelSetup(b)
	ws := phy.GetWorkspace()
	defer phy.PutWorkspace(ws)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		recon := phy.ReconstructAtReceiverWS(ws, payload, v, 1, est.H, est.CFO, 1e6, 0, dur)
		phy.CancelWS(ws, rx, recon)
	}
}

func newTCPHubForBench() (*benchHubIface, error) {
	h, err := backend.NewTCPHub(3)
	if err != nil {
		return nil, err
	}
	for p := 0; p < 3; p++ {
		if err := h.ConnectPort(p); err != nil {
			h.Close()
			return nil, err
		}
	}
	return &benchHubIface{
		pub: func(payload []byte, seq uint32) error {
			return h.Publish(0, backend.Message{Type: backend.MsgDecodedPacket, Seq: seq, Payload: payload})
		},
		drain: func(min int) {
			h.DrainWait(1, min, 5*time.Second)
			h.DrainWait(2, min, 5*time.Second)
		},
		close: func() { h.Close() },
	}, nil
}
