package iaclan

import (
	"reflect"
	"testing"
)

func smallSimConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.Clients = 10
	cfg.Cycles = 25
	cfg.Workload = SimWorkload{Kind: WorkloadPoisson, PacketsPerSlot: 0.12}
	return cfg
}

func TestSimulateEndToEnd(t *testing.T) {
	res, err := Simulate(smallSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1 || res.Cycles != 25 {
		t.Fatalf("shape: %+v", res)
	}
	if len(res.PerClientThroughput) != 10 {
		t.Fatalf("per-client throughput for %d clients", len(res.PerClientThroughput))
	}
	if res.SumThroughputBitsPerSlot <= 0 || res.JainFairness <= 0 || res.MeanLatencySlots <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	if res.BackendBytesPerWirelessBit <= 0 || res.BackendBytesPerWirelessBit > 1 {
		t.Fatalf("backend ratio %v", res.BackendBytesPerWirelessBit)
	}
}

func TestSimulateBitIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := smallSimConfig()
	cfg.Cycles = 15
	cfg.Trials = 3

	cfg.Workers = 1
	serial, err := SimulateTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	parallel, err := SimulateTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed the results")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	cfg := smallSimConfig()
	cfg.GroupSize = 5
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("bad group size accepted")
	}
}

func TestGainSurfacesSlotErrors(t *testing.T) {
	net := NewTestbedNetwork(3)
	nodes := net.Nodes()
	// 2 clients x 2 APs is not a supported downlink shape; Gain must
	// report the planner error instead of a zero-rate ratio.
	if _, err := net.Gain(nodes[:2], nodes[2:4], false); err == nil {
		t.Fatal("unsupported downlink shape produced no error")
	}
}
