// uplinklan walks the complete SIGNAL-LEVEL uplink pipeline of the paper
// (Fig. 4b) — actual bits through actual baseband samples:
//
//  1. Training: each client sends an isolated training burst; the APs
//     least-squares estimate the channel matrices and CFOs (Section 8a).
//  2. Alignment: the leader solves Eq. 2 on the estimates so packets 1
//     and 2 align at AP0.
//  3. Three packets fly concurrently from two unsynchronized clients
//     with distinct oscillator offsets through Rayleigh channels + noise.
//  4. AP0 projects orthogonal to the aligned interference and decodes
//     packet 0; the decoded bits cross the Ethernet hub.
//  5. AP1 reconstructs packet 0's waveform, subtracts it, and
//     zero-forces packets 1 and 2.
//
// Run: go run ./examples/uplinklan
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"

	"iaclan/internal/backend"
	"iaclan/internal/channel"
	"iaclan/internal/cmplxmat"
	"iaclan/internal/core"
	"iaclan/internal/phy"
	"iaclan/internal/radio"
)

const sampleRate = 1e6

func main() {
	// --- The world: two clients, two APs, USRP-like oscillators.
	params := channel.DefaultParams()
	params.CFOStdHz = 300
	world := channel.NewWorld(params, 7)
	c0 := world.AddNode(1, 1)
	c1 := world.AddNode(1, 9)
	ap0 := world.AddNode(8, 3)
	ap1 := world.AddNode(8, 7)
	medium := radio.NewMedium(world, sampleRate, 0.003, 11)
	hub := backend.NewMemHub(2) // the APs' Ethernet

	// --- Step 1: training.
	fmt.Println("step 1: channel + CFO estimation from training bursts")
	ests := phy.EstimateAllLinks(medium, []*channel.Node{c0, c1}, []*channel.Node{ap0, ap1}, 8)
	for i := range ests {
		for j := range ests[i] {
			fmt.Printf("  client%d->ap%d: CFO %+6.0f Hz\n", i, j, ests[i][j].CFO)
		}
	}

	// --- Step 2: alignment on the estimates.
	estCS := core.ChannelSet(phy.ChannelSetFromEstimates(ests))
	rng := rand.New(rand.NewSource(3))
	plan, err := core.SolveUplinkThree(estCS, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: encoding vectors solved; alignment residual %.2e\n",
		plan.AlignmentResidual(estCS))

	// --- Step 3: three concurrent packets (client1 keys up 5 samples late).
	payloads := [][]byte{
		[]byte("packet-0: decoded at AP0 behind aligned interference......"),
		[]byte("packet-1: decoded at AP1 after cancelling packet-0........"),
		[]byte("packet-2: decoded at AP1 alongside packet-1..............."),
	}
	amp := 1 / math.Sqrt2 // client 0 splits power over two packets
	x0a := phy.PrecodeFrame(payloads[0], plan.Encoding[0], amp)
	x0b := phy.PrecodeFrame(payloads[1], plan.Encoding[1], amp)
	x0 := make([][]complex128, 2)
	for a := range x0 {
		x0[a] = make([]complex128, len(x0a[a]))
		for t := range x0[a] {
			x0[a][t] = x0a[a][t] + x0b[a][t]
		}
	}
	bursts := []radio.Burst{
		{From: c0, Start: 10, Samples: x0},
		{From: c1, Start: 15, Samples: phy.PrecodeFrame(payloads[2], plan.Encoding[2], 1)},
	}
	dur := len(x0[0]) + 60
	y0 := medium.Receive(ap0, dur, bursts)
	y1 := medium.Receive(ap1, dur, bursts)
	fmt.Printf("step 3: 3 packets on the air simultaneously (%d samples)\n", dur)

	// --- Step 4: AP0 decodes packet 0.
	d1 := ests[0][0].H.MulVec(plan.Encoding[1])
	d2 := ests[1][0].H.MulVec(plan.Encoding[2])
	fmt.Printf("step 4: interference alignment at AP0: angle(p1,p2) = %.4f rad\n",
		d1.AngleTo(d2))
	w0 := cmplxmat.OrthogonalComplementVector(2, 1e-9, d1, d2)
	g0 := w0.Dot(ests[0][0].H.MulVec(plan.Encoding[0])) * complex(amp, 0)
	res0, err := phy.DecodeProjected(phy.Project(y0, w0), g0, len(payloads[0]), sampleRate, 0.5)
	if err != nil {
		log.Fatal("AP0 decode failed: ", err)
	}
	fmt.Printf("  AP0 decoded packet 0 (SNR %.1f dB): %q\n",
		10*math.Log10(res0.SNR), res0.Payload)
	// AP0 annotates the decoded packet with where it detected the frame:
	// the APs share a slot clock, so AP1 only needs to search a couple of
	// samples of residual jitter around that offset.
	if err := hub.Publish(0, backend.Message{
		Type: backend.MsgDecodedPacket, From: 0, Seq: uint32(res0.Offset), Payload: res0.Payload,
	}); err != nil {
		log.Fatal(err)
	}

	// --- Step 5: AP1 cancels packet 0 and zero-forces the rest.
	shared := hub.Drain(1)
	fmt.Printf("step 5: AP1 received %d packet(s) over the Ethernet (%d bytes on wire)\n",
		len(shared), hub.BytesOnWire())
	y1res, foundStart := phy.CancelWithJitterSearch(y1, shared[0].Payload,
		plan.Encoding[0], amp, ests[0][1].H, ests[0][1].CFO, sampleRate, int(shared[0].Seq), 2)
	fmt.Printf("  cancellation located packet 0 at sample %d\n", foundStart)

	e1 := ests[0][1].H.MulVec(plan.Encoding[1])
	e2 := ests[1][1].H.MulVec(plan.Encoding[2])
	for i, tc := range []struct {
		name    string
		null    cmplxmat.Vector
		sig     cmplxmat.Vector
		amp     float64
		payload []byte
	}{
		{"packet 1", e2, e1, amp, payloads[1]},
		{"packet 2", e1, e2, 1, payloads[2]},
	} {
		w := cmplxmat.OrthogonalComplementVector(2, 1e-9, tc.null)
		g := w.Dot(tc.sig) * complex(tc.amp, 0)
		res, err := phy.DecodeProjected(phy.Project(y1res, w), g, len(tc.payload), sampleRate, 0.4)
		if err != nil {
			log.Fatalf("AP1 decode %s failed: %v", tc.name, err)
		}
		status := "OK"
		if !bytes.Equal(res.Payload, tc.payload) {
			status = "CORRUPTED"
		}
		fmt.Printf("  AP1 decoded %s (SNR %.1f dB, %s): %q\n",
			tc.name, 10*math.Log10(res.SNR), status, res.Payload)
		_ = i
	}
	fmt.Println("\nthree packets delivered through two 2-antenna APs: the")
	fmt.Println("antennas-per-AP limit is broken (paper Fig. 2).")
}
