// largelan reproduces the paper's large-network experiment (Section
// 10.3) interactively: 17 clients with infinite demand share 3 APs, and
// the three concurrency algorithms — brute force, FIFO, best-of-two —
// pick who transmits together. The output shows the throughput/fairness
// trade-off the paper's Fig. 15 plots: brute force wins on mean rate but
// starves clients; FIFO is fair but slow; best-of-two (IAC's choice)
// gets nearly the brute-force rate with FIFO-like fairness.
//
// Run: go run ./examples/largelan
package main

import (
	"fmt"
	"log"
	"sort"

	"iaclan"
	"iaclan/internal/stats"
)

func main() {
	cfg := iaclan.DefaultExperimentConfig()
	cfg.Trials = 20
	cfg.Slots = 500
	cfg.Runs = 2

	fmt.Println("17 clients, 3 APs, infinite demand, uplink groups of 3")
	fmt.Println("(each slot carries 4 concurrent packets under IAC)")
	r, err := iaclan.RunExperiment("fig15a", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %-12s %-16s %-10s\n", "algorithm", "mean gain", "clients < 1x", "fairness")
	for _, alg := range []string{"brute_force", "fifo", "best_of_two"} {
		fmt.Printf("%-14s %-12.2f %-16.0f%% %-10.2f\n",
			alg,
			r.Metrics["gain_mean_"+alg],
			100*r.Metrics["frac_below_1_"+alg],
			r.Metrics["jain_"+alg])
	}

	fmt.Println("\nper-client gain CDFs (x: gain over 802.11-MIMO, y: fraction of clients)")
	for _, alg := range []string{"brute_force", "best_of_two"} {
		series := append([]float64(nil), r.Series[alg]...)
		sort.Float64s(series)
		fmt.Print(stats.ASCIICDF(series, 56, 8, alg))
	}
	fmt.Println("paper Fig. 15a: brute force has a tail of losers (gain < 1);")
	fmt.Println("best-of-two keeps everyone ahead while staying near its rate.")
}
