// Command snrlan demonstrates the SNR-aware link plane: a saturated
// 9-client, 3-AP uplink runs at progressively lower SNR operating
// points (receiver noise raised in dB steps) with imperfect
// cancellation and the shared discrete MCS rate table on for both
// schemes. At high SNR IAC multiplexes four packets per slot and wins
// its usual multiple over the 802.11-MIMO TDMA baseline, limited by
// cancellation residuals rather than noise; as the SNR drops, IAC's
// per-packet power split and the residuals its chains inherit push
// packets below their selected modulation rungs first, and the gain
// collapses toward (and past) 1x — the paper's Section 8 story. A
// second pass isolates the residual model's cost at high SNR.
package main

import (
	"fmt"
	"log"

	"iaclan"
)

func main() {
	base := iaclan.DefaultSimConfig()
	base.Clients = 9
	base.APs = 3
	base.Cycles = 400
	base.Workload = iaclan.SimWorkload{Kind: iaclan.WorkloadSaturated}

	run := func(cfg iaclan.SimConfig) iaclan.SimSummary {
		res, err := iaclan.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("== SNR operating-point sweep (residual cancellation + shared MCS table)")
	fmt.Printf("%-9s %-14s %-14s %-8s %-10s %-10s\n",
		"noise dB", "iac [b/slot]", "tdma [b/slot]", "gain", "del(iac)", "del(tdma)")
	for _, db := range []float64{0, 6, 12, 18, 24} {
		cfg := base
		cfg.Link = iaclan.SimLink{NoiseDB: db, ResidualCancel: true, MCS: true}
		iac := run(cfg)
		tdma := cfg
		tdma.GroupSize = 1
		tdma.Picker = iaclan.PickerFIFO
		baseRes := run(tdma)
		gain := 0.0
		if baseRes.SumThroughputBitsPerSlot > 0 {
			gain = iac.SumThroughputBitsPerSlot / baseRes.SumThroughputBitsPerSlot
		}
		fmt.Printf("%-9.0f %-14.1f %-14.1f %-8.2f %-10.3f %-10.3f\n",
			db, iac.SumThroughputBitsPerSlot, baseRes.SumThroughputBitsPerSlot,
			gain, iac.DeliveredFraction, baseRes.DeliveredFraction)
	}

	// At the high-SNR end, noise is no excuse: the gap between exact and
	// residual cancellation is what imperfect reconstruction costs IAC's
	// cancellation chains.
	fmt.Println("\n== residual-cancellation cost at the high-SNR point (MCS on)")
	for _, residual := range []bool{false, true} {
		cfg := base
		cfg.Link = iaclan.SimLink{ResidualCancel: residual, MCS: true}
		res := run(cfg)
		fmt.Printf("residual %-5v: %8.1f b/slot, delivered %.3f\n",
			residual, res.SumThroughputBitsPerSlot, res.DeliveredFraction)
	}
}
