// Command trafficlan demonstrates the discrete-event LAN traffic
// engine end to end: a 10-client, 3-AP testbed network sustains Poisson
// and bursty streaming workloads for 1000 CFP cycles, and a trial sweep
// runs serially and then sharded over all cores to show the parallel
// runner's speedup with bit-identical results.
package main

import (
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"iaclan"
)

func main() {
	base := iaclan.DefaultSimConfig()
	base.Clients = 10
	base.APs = 3
	base.Cycles = 1000

	for _, w := range []iaclan.SimWorkload{
		{Kind: iaclan.WorkloadPoisson, PacketsPerSlot: 0.12},
		{Kind: iaclan.WorkloadBursty, PacketsPerSlot: 0.12, Duty: 0.25, MeanBurstSlots: 25},
	} {
		cfg := base
		cfg.Workload = w
		res, err := iaclan.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s workload, %d cycles\n%s\n", w.Kind, cfg.Cycles, res)
	}

	// Parallel trial sweep: same seeds, serial vs all-cores.
	sweep := base
	sweep.Cycles = 250
	sweep.Workload = iaclan.SimWorkload{Kind: iaclan.WorkloadPoisson, PacketsPerSlot: 0.12}
	sweep.Trials = 8

	sweep.Workers = 1
	start := time.Now()
	serial, err := iaclan.SimulateTrials(sweep)
	if err != nil {
		log.Fatal(err)
	}
	serialWall := time.Since(start)

	sweep.Workers = runtime.GOMAXPROCS(0)
	start = time.Now()
	parallel, err := iaclan.SimulateTrials(sweep)
	if err != nil {
		log.Fatal(err)
	}
	parallelWall := time.Since(start)

	fmt.Printf("== trial sweep: %d trials x %d cycles\n", sweep.Trials, sweep.Cycles)
	fmt.Printf("serial   (1 worker):  %v\n", serialWall.Round(time.Millisecond))
	fmt.Printf("parallel (%d workers): %v  -> %.2fx speedup\n",
		sweep.Workers, parallelWall.Round(time.Millisecond),
		float64(serialWall)/float64(parallelWall))
	fmt.Printf("bit-identical results: %v\n", reflect.DeepEqual(serial, parallel))
}
