// downlinklan demonstrates the paper's three-packet downlink (Fig. 6,
// Eqs. 5-7): three APs each deliver one packet to one of three clients
// simultaneously. Clients cannot share decoded packets over a wire, so
// every client must see its two undesired packets aligned on a single
// spatial direction — the encoding vectors solve the triangle of
// alignment constraints.
//
// Run: go run ./examples/downlinklan
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iaclan"
	"iaclan/internal/channel"
	"iaclan/internal/core"
	"iaclan/internal/testbed"
)

func main() {
	// High-level API first: one downlink slot on the testbed.
	net := iaclan.NewTestbedNetwork(5)
	nodes := net.Nodes()
	clients, aps := nodes[:3], nodes[3:6]
	slot, err := net.Downlink(clients, aps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IAC downlink slot: %d concurrent packets, %.2f b/s/Hz\n", slot.Packets, slot.SumRate)
	base, err := net.Baseline(clients, aps, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("802.11-MIMO TDMA:  %.2f b/s/Hz  ->  gain %.2fx (paper: ~1.4x)\n\n",
		base.SumRate, slot.SumRate/base.SumRate)

	// Now the internals: solve Eqs. 5-7 directly and verify the geometry.
	world := channel.DefaultTestbed(9)
	s := testbed.PickScenario(world, 3, 3)
	cs := s.DownlinkChannels()
	plan, err := core.SolveDownlinkTriangle(cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alignment geometry at each client (angles in radians):")
	for client := 0; client < 3; client++ {
		var undesired []int
		for pkt := 0; pkt < 3; pkt++ {
			if pkt != client {
				undesired = append(undesired, pkt)
			}
		}
		u0 := cs[undesired[0]][client].MulVec(plan.Encoding[undesired[0]])
		u1 := cs[undesired[1]][client].MulVec(plan.Encoding[undesired[1]])
		des := cs[client][client].MulVec(plan.Encoding[client])
		fmt.Printf("  client %d: angle(p%d,p%d)=%.5f (aligned), angle(desired,interference)=%.3f\n",
			client, undesired[0], undesired[1], u0.AngleTo(u1), des.AngleTo(u0))
	}

	ev, err := plan.Evaluate(cs, testbed.Estimate(cs, rand.New(rand.NewSource(2))),
		testbed.NodePower, testbed.NoisePower)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-client outcome with estimated channels:")
	for pkt, r := range ev.PacketRate {
		fmt.Printf("  packet %d -> client %d: SINR %.1f, rate %.2f b/s/Hz\n",
			pkt, pkt, ev.SINR[pkt], r)
	}
	fmt.Println("\nno wire between clients was needed: alignment alone freed a")
	fmt.Println("dimension at every client (paper Section 4d).")
}
