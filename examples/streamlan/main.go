// Command streamlan demonstrates the closed-loop transport and the
// streaming application plane end to end. Nine clients each watch an
// on-demand stream — chunked bursts feeding a playback buffer — through
// the AIMD windowed transport, whose RTO timers re-inject whatever the
// MAC gives up on. MAC retries are off, so every loss rides the
// transport loop; the radios sleep through the inter-burst gaps and the
// energy tally prices what that sleep is worth.
//
// The run contrasts IAC transmission groups against the 802.11-MIMO
// TDMA baseline at two noise points. At the clean point the aggregate
// chunk load (0.9 pkt/slot) sits above what TDMA's one-packet-per-slot
// service can sustain — the baseline rebuffers even on a perfect
// channel, while IAC's concurrent slots keep every playback smooth.
//
// Run: go run ./examples/streamlan
package main

import (
	"fmt"
	"log"

	"iaclan"
)

func main() {
	base := iaclan.DefaultSimConfig()
	base.Clients = 9
	base.APs = 3
	base.Cycles = 400
	base.Trials = 2
	base.MaxRetries = 0 // losses surface to the transport, not the MAC
	base.Workload = iaclan.SimWorkload{
		Kind:           iaclan.WorkloadStreaming,
		PacketsPerSlot: 0.1,
		ChunkSlots:     30,
	}
	base.Transport = iaclan.SimTransport{Enabled: true, RTOCycles: 2}

	for _, db := range []float64{0, 12} {
		fmt.Printf("== noise %+g dB, 9 streams x 0.1 pkt/slot in 30-slot chunks\n", db)
		for _, scheme := range []string{"iac", "tdma"} {
			cfg := base
			cfg.Link = iaclan.SimLink{NoiseDB: db, ResidualCancel: true, MCS: true}
			if scheme == "tdma" {
				cfg.GroupSize = 1
				cfg.Picker = iaclan.PickerFIFO
			}
			res, err := iaclan.Simulate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			st := res.Stream
			fmt.Printf("%-5s goodput %7.1f bits/slot | started %d/%d, startup %4.0f slots | rebuffers %3d (%.3f of watch time) | awake %5.0f slots, %.3g energy/bit | retx %d\n",
				scheme, st.GoodputBitsPerSlot, st.Started, st.Streams, st.MeanStartupSlots,
				st.RebufferEvents, st.RebufferRate, st.AwakeSlots, st.EnergyPerBit,
				res.Transport.Retransmits)
		}
		fmt.Println()
	}
}
