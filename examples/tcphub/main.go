// tcphub demonstrates the wired coordination plane over a REAL TCP
// loopback hub (paper Section 7.1d): AP0 publishes a decoded packet plus
// a channel-update annotation; the other APs receive them through actual
// sockets. The example then contrasts IAC's backend load with what
// virtual MIMO would need for the same deployment (Section 2a).
//
// Run: go run ./examples/tcphub
package main

import (
	"fmt"
	"log"
	"time"

	"iaclan/internal/backend"
)

func main() {
	const numAPs = 3
	hub, err := backend.NewTCPHub(numAPs)
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	fmt.Printf("TCP hub listening on %s, %d AP ports\n", hub.Addr(), numAPs)
	for p := 0; p < numAPs; p++ {
		if err := hub.ConnectPort(p); err != nil {
			log.Fatal(err)
		}
	}

	// AP0 decoded a packet (Section 4's first decode) and shares it so
	// AP1 and AP2 can cancel it.
	packet := make([]byte, 1500)
	copy(packet, "decoded packet p1: bits recovered behind aligned interference")
	if err := hub.Publish(0, backend.Message{
		Type: backend.MsgDecodedPacket, From: 0, Seq: 1, Payload: packet,
	}); err != nil {
		log.Fatal(err)
	}
	// AP2's channel to client 3 drifted past the threshold; it tells the
	// leader as an annotation (Section 7.1c).
	if err := hub.Publish(2, backend.Message{
		Type: backend.MsgChannelUpdate, From: 2, Seq: 3,
		Payload: []byte("H[3][2] drifted 12%"),
	}); err != nil {
		log.Fatal(err)
	}

	for p := 0; p < numAPs; p++ {
		msgs := hub.DrainWait(p, 1, 2*time.Second)
		for _, m := range msgs {
			switch m.Type {
			case backend.MsgDecodedPacket:
				fmt.Printf("AP%d <- decoded packet seq %d from AP%d (%d bytes): ready to cancel\n",
					p, m.Seq, m.From, len(m.Payload))
			case backend.MsgChannelUpdate:
				fmt.Printf("AP%d <- channel update from AP%d: %s\n", p, m.From, m.Payload)
			}
		}
	}

	fmt.Printf("\nbytes on the wire: %d (one broadcast per packet, hub semantics)\n", hub.BytesOnWire())

	// Why decoded packets and not raw samples? The virtual MIMO
	// comparison from Section 2(a):
	vm := backend.VirtualMIMOBackendBits(3, 4, 20e6, 8)
	fmt.Printf("\nbackend bandwidth needed for this deployment:\n")
	fmt.Printf("  virtual MIMO (raw samples):   %.1f Gb/s\n", vm/1e9)
	fmt.Printf("  IAC (decoded packets):        ~= wireless throughput (tens of Mb/s)\n")
	fmt.Printf("  reduction:                    %.0fx\n", backend.BackendReduction(3, 4, 20e6, 8, 100e6))
}
