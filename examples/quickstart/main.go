// Quickstart: three concurrent packets through two 2-antenna APs.
//
// Current MIMO LANs cap concurrent packets at the AP's antenna count
// (two here). This example reproduces the paper's headline scenario
// (Fig. 2 / Fig. 4b): two 2-antenna clients upload THREE packets at
// once. Interference alignment lets AP1 decode one packet; the wired
// backend and interference cancellation let AP2 decode the other two.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iaclan"
)

func main() {
	// A deterministic simulated MIMO LAN: one room, Rayleigh fading,
	// 2-antenna nodes (the paper's USRP testbed, in software).
	net := iaclan.NewNetwork(iaclan.NetworkConfig{Seed: 42})
	client0 := net.AddNode(1, 1)
	client1 := net.AddNode(1, 9)
	ap0 := net.AddNode(8, 3)
	ap1 := net.AddNode(8, 7)

	clients := []iaclan.Node{client0, client1}
	aps := []iaclan.Node{ap0, ap1}

	// One IAC uplink slot: client0 uploads two packets, client1 one.
	iac, err := net.Uplink(clients, aps, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IAC slot:        %d concurrent packets, %.2f b/s/Hz total\n",
		iac.Packets, iac.SumRate)
	for c, r := range iac.PerClient {
		fmt.Printf("  client %d contributed %.2f b/s/Hz\n", c, r)
	}

	// The same nodes under point-to-point 802.11-MIMO (eigenmode
	// precoding, best-AP selection, TDMA between the clients).
	base, err := net.Baseline(clients, aps, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("802.11-MIMO:     %d packets max per slot, %.2f b/s/Hz total\n",
		base.Packets, base.SumRate)

	gain, err := net.Gain(clients, aps, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gain:            %.2fx (paper reports ~1.5x on this scenario)\n", gain)
}
