// Command campuslan demonstrates the multi-cell campus plane riding on
// the N-AP uplink chain. A campus of C cells — each a saturated
// 6-client cluster uploading through 4 cooperating APs, so every IAC
// slot runs the generalized successive-alignment chain over all four —
// is simulated under the full link plane (receiver noise, residual
// cancellation, the shared MCS table) with inter-cell interference
// leaking into every cell's noise floor. Campus throughput grows with
// the cell count while the leakage tax shows up as a per-cell
// efficiency shortfall; a second pass contrasts AP densities per cell
// (2, 3, 4 APs), the DoF ladder of Lemma 5.2.
package main

import (
	"fmt"
	"log"

	"iaclan"
)

func main() {
	base := iaclan.DefaultSimConfig()
	base.Clients = 6
	base.APs = 4
	base.Cycles = 200
	base.Trials = 2
	base.Workload = iaclan.SimWorkload{Kind: iaclan.WorkloadSaturated}
	base.Link = iaclan.SimLink{NoiseDB: 6, ResidualCancel: true, MCS: true}

	fmt.Println("== campus scaling (6 clients x 4 APs per cell, leakage 0.15 per neighbour)")
	fmt.Printf("%-7s %-18s %-11s %-11s\n", "cells", "thr [bits/slot]", "delivered", "leak tax")
	for _, c := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Cells = iaclan.SimCells{Count: c, Leak: 0.15}
		res, err := iaclan.SimulateCampus(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// One cell has no neighbours: the leaky run doubles as its own
		// isolated control.
		isolated := res
		if c > 1 {
			iso := cfg
			iso.Cells.Leak = 0
			isolated, err = iaclan.SimulateCampus(iso)
			if err != nil {
				log.Fatal(err)
			}
		}
		thr := res.Campus.SumThroughputBitsPerSlot
		// Leak tax: what the same campus loses to inter-cell
		// interference relative to perfectly isolated cells.
		tax := 0.0
		if it := isolated.Campus.SumThroughputBitsPerSlot; it > 0 {
			tax = 1 - thr/it
		}
		fmt.Printf("%-7d %-18.1f %-11s %-11s\n",
			c, thr,
			fmt.Sprintf("%.1f%%", 100*res.Campus.DeliveredFraction),
			fmt.Sprintf("%.1f%%", 100*tax))
	}

	// AP density inside one cell: the third AP unlocks the 2M-packet
	// chain (Lemma 5.2); the fourth spreads the successive-cancellation
	// chain wider and adds role diversity but cannot beat the DoF
	// ceiling — and under residual cancellation the longer chain pays a
	// real tax, since every extra cancelled hop leaks 1/(1+SINR) of its
	// power back into the late packets.
	fmt.Println("\n== APs per cell (single cell, IAC vs 802.11-MIMO TDMA)")
	fmt.Printf("%-6s %-14s %-14s %-8s\n", "APs", "iac [b/slot]", "mimo [b/slot]", "gain")
	for _, aps := range []int{2, 3, 4} {
		cfg := base
		cfg.Cells = iaclan.SimCells{}
		cfg.APs = aps
		cfg.GroupSize = 3
		if aps < 3 {
			cfg.GroupSize = aps
		}
		iac, err := iaclan.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mimoCfg := cfg
		mimoCfg.GroupSize = 1
		mimoCfg.Picker = iaclan.PickerFIFO
		mimo, err := iaclan.Simulate(mimoCfg)
		if err != nil {
			log.Fatal(err)
		}
		gain := 0.0
		if mimo.SumThroughputBitsPerSlot > 0 {
			gain = iac.SumThroughputBitsPerSlot / mimo.SumThroughputBitsPerSlot
		}
		fmt.Printf("%-6d %-14.1f %-14.1f %-8.2f\n",
			aps, iac.SumThroughputBitsPerSlot, mimo.SumThroughputBitsPerSlot, gain)
	}
}
