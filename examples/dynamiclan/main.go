// Command dynamiclan demonstrates the channel-dynamics subsystem: a
// saturated 9-client, 3-AP uplink runs under block fading of increasing
// speed while the APs re-train on a fixed 8-cycle schedule. On a static
// channel IAC's concurrent slots win their usual margin over the
// 802.11-MIMO TDMA baseline; as the channel decorrelates faster than
// the training survey, stale CSI turns into outage losses and the gain
// collapses — the coherence-time effect of the paper's Section 8. A
// second pass holds the fading speed fixed and varies the re-training
// period, trading training airtime against CSI staleness.
package main

import (
	"fmt"
	"log"

	"iaclan"
)

func main() {
	base := iaclan.DefaultSimConfig()
	base.Clients = 9
	base.APs = 3
	base.Cycles = 400
	base.Workload = iaclan.SimWorkload{Kind: iaclan.WorkloadSaturated}

	run := func(cfg iaclan.SimConfig) iaclan.SimSummary {
		res, err := iaclan.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("== fading speed sweep (re-train every 8 cycles, 2 slots each)")
	fmt.Printf("%-6s %-14s %-14s %-8s %-10s\n", "eps", "iac [b/slot]", "tdma [b/slot]", "gain", "delivered")
	for _, eps := range []float64{0, 0.15, 0.35, 0.6} {
		cfg := base
		cfg.Dynamics = iaclan.SimDynamics{
			Eps:             eps,
			CoherenceCycles: 1,
			RetrainCycles:   8,
			TrainSlots:      2,
		}
		iac := run(cfg)
		tdma := cfg
		tdma.GroupSize = 1
		tdma.Picker = iaclan.PickerFIFO
		baseRes := run(tdma)
		fmt.Printf("%-6.2f %-14.1f %-14.1f %-8.2f %-10.3f\n",
			eps, iac.SumThroughputBitsPerSlot, baseRes.SumThroughputBitsPerSlot,
			iac.SumThroughputBitsPerSlot/baseRes.SumThroughputBitsPerSlot,
			iac.DeliveredFraction)
	}

	fmt.Println("\n== re-training period sweep (eps 0.35 per cycle)")
	fmt.Printf("%-8s %-14s %-10s\n", "period", "iac [b/slot]", "delivered")
	for _, period := range []int{2, 4, 8, 16, 32} {
		cfg := base
		cfg.Dynamics = iaclan.SimDynamics{
			Eps:             0.35,
			CoherenceCycles: 1,
			RetrainCycles:   period,
			TrainSlots:      2,
		}
		res := run(cfg)
		fmt.Printf("%-8d %-14.1f %-10.3f\n", period, res.SumThroughputBitsPerSlot, res.DeliveredFraction)
	}

	// Random-waypoint mobility is the harshest axis: a half-meter step is
	// several wavelengths at WiFi bands, so the world redraws a moved
	// pair's fading entirely — between two training rounds the survey is
	// worthless, whatever eps says.
	fmt.Println("\n== client mobility (eps 0, re-train every 4 cycles)")
	for _, mobile := range []bool{false, true} {
		cfg := base
		cfg.Dynamics = iaclan.SimDynamics{
			CoherenceCycles: 1,
			RetrainCycles:   4,
			TrainSlots:      2,
			Mobility:        mobile,
		}
		res := run(cfg)
		fmt.Printf("mobility %-5v: %8.1f b/slot, delivered %.3f\n",
			mobile, res.SumThroughputBitsPerSlot, res.DeliveredFraction)
	}
}
